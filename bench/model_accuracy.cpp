// E16 (extension): predictive value of heterogeneity-awareness.
//
// HBSP (the 1-level precursor paper) distinguishes itself from HCGM by
// aiming to be "an accurate predictor of execution times". This bench
// quantifies that on our substrate: predict collective times with
//
//   (a) plain BSP        — every processor assumed as fast as the fastest
//                          (r ≡ 1, the homogeneous model's view),
//   (b) HBSP^k           — the §3.4 cost model with true r values,
//   (c) HBSP^k + §6 λ    — destination-weighted on hierarchical machines,
//
// and report each model's error against the simulated cluster. The ordering
// (a) > (b) > (c) in error is the quantitative case for the model.
//
// The (machine, collective, size) cases are independent; each case plans and
// simulates against shared *immutable* models, so they shard across a
// util::ThreadPool into per-case slots and the tables assemble in case order
// — identical output at any --threads value.

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "collectives/planners.hpp"
#include "core/cost_model.hpp"
#include "core/topology.hpp"
#include "sim/cluster_sim.hpp"
#include "sim/dest_calibration.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace {

using namespace hbsp;

/// The same machine with every r (and compute_r) forced to 1 — what a
/// homogeneous BSP model believes about the cluster.
MachineTree homogenised(const MachineTree& tree) {
  const auto strip = [&](auto&& self, MachineId id) -> MachineSpec {
    MachineSpec spec;
    const auto& node = tree.node(id);
    spec.name = node.name;
    spec.sync_L = node.sync_L;
    if (tree.is_processor(id)) {
      spec.r = 1.0;
      return spec;
    }
    for (int j = 0; j < tree.num_children(id); ++j) {
      spec.children.push_back(self(self, tree.child(id, j)));
    }
    return spec;
  };
  return MachineTree::build(strip(strip, tree.root()), tree.g());
}

/// One machine's trees, calibration, and the three predictor models; built
/// once, then shared read-only by the parallel cases.
struct Machine {
  std::string name;
  MachineTree tree;
  MachineTree flat_view;
  CostModel bsp_model;
  CostModel hbsp_model;
  CostModel extended_model;
  DestinationCosts lambda;

  Machine(std::string machine_name, MachineTree machine_tree)
      : name{std::move(machine_name)},
        tree{std::move(machine_tree)},
        flat_view{homogenised(tree)},
        bsp_model{flat_view},
        hbsp_model{tree},
        extended_model{tree},
        lambda{sim::calibrate_destination_costs(tree, sim::SimParams{})} {
    extended_model.set_destination_costs(&lambda);
  }
};

struct Case {
  const Machine* machine = nullptr;
  std::string name;
  CommSchedule schedule;
};

struct Prediction {
  double actual = 0.0;
  double bsp = 0.0;
  double hbsp = 0.0;
  double extended = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli{argc, argv};
  cli.allow("threads", "worker threads for the case sweep (default 1)");
  cli.validate();

  std::vector<std::unique_ptr<Machine>> machines;
  machines.push_back(std::make_unique<Machine>("testbed", make_paper_testbed(10)));
  machines.push_back(std::make_unique<Machine>("campus", make_figure1_cluster()));
  machines.push_back(std::make_unique<Machine>("wan-grid", make_wide_area_grid()));

  std::vector<Case> cases;
  for (const auto& machine : machines) {
    const MachineTree& tree = machine->tree;
    for (const std::size_t kb : {100u, 1000u}) {
      const std::size_t n = util::ints_in_kbytes(kb);
      const std::string size = std::to_string(kb) + "KB";
      const auto add = [&](const std::string& name, CommSchedule schedule) {
        cases.push_back({machine.get(), name, std::move(schedule)});
      };
      add("gather " + size, coll::plan_gather(tree, n, {}));
      add("gather-slowroot " + size,
          coll::plan_gather(tree, n,
                            {.root_pid = tree.slowest_pid(tree.root()),
                             .shares = coll::Shares::kEqual}));
      add("bcast " + size, coll::plan_broadcast(tree, n, {}));
      add("scatter " + size, coll::plan_scatter(tree, n, {}));
      add("reduce " + size, coll::plan_reduce_tree(tree, n, {}));
    }
  }

  std::vector<Prediction> predictions(cases.size());
  util::ThreadPool pool{static_cast<int>(cli.get_positive_int("threads", 1))};
  pool.parallel_for(cases.size(), [&](std::size_t i) {
    const Case& test_case = cases[i];
    const Machine& machine = *test_case.machine;
    sim::ClusterSim sim{machine.tree, sim::SimParams{}};
    Prediction& out = predictions[i];
    out.actual = sim.run(test_case.schedule).makespan;
    out.bsp = machine.bsp_model.cost(test_case.schedule).total();
    out.hbsp = machine.hbsp_model.cost(test_case.schedule).total();
    out.extended = machine.extended_model.cost(test_case.schedule).total();
  });

  util::Table table{
      "Prediction error vs the simulated cluster: BSP / HBSP^k / HBSP^k+lambda"};
  table.set_header({"case", "simulated", "BSP err", "HBSP^k err",
                    "+dest-costs err"});
  util::Accumulator bsp_errors;
  util::Accumulator hbsp_errors;
  util::Accumulator extended_errors;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Prediction& prediction = predictions[i];
    const auto rel = [&](double value) {
      return std::abs(value - prediction.actual) / prediction.actual;
    };
    bsp_errors.add(rel(prediction.bsp));
    hbsp_errors.add(rel(prediction.hbsp));
    extended_errors.add(rel(prediction.extended));
    table.add_row({cases[i].machine->name + " " + cases[i].name,
                   util::format_time(prediction.actual),
                   util::Table::num(100 * rel(prediction.bsp), 1) + "%",
                   util::Table::num(100 * rel(prediction.hbsp), 1) + "%",
                   util::Table::num(100 * rel(prediction.extended), 1) + "%"});
  }
  table.print();

  util::Table summary{"Mean relative error over all cases"};
  summary.set_header({"model", "mean error"});
  summary.add_row({"BSP (homogeneous r=1)",
                   util::Table::num(100 * bsp_errors.summary().mean, 1) + "%"});
  summary.add_row({"HBSP^k (SS3.4)",
                   util::Table::num(100 * hbsp_errors.summary().mean, 1) + "%"});
  summary.add_row({"HBSP^k + SS6 destination costs",
                   util::Table::num(100 * extended_errors.summary().mean, 1) +
                       "%"});
  summary.print();

  std::puts(
      "\nIgnoring heterogeneity (BSP) underpredicts whenever slow machines\n"
      "sit on the critical path; the HBSP^k model recovers most of that, and\n"
      "the destination-cost extension recovers the per-level link penalty the\n"
      "single-r model still misses on hierarchies.");
  return 0;
}
