// Reproduces the §4.2/§4.3 gather analysis as tables:
//
//  * the HBSP^1 closed form g·max{r_j·x_j, r_root·(n−x_root)} + L and its
//    balanced simplification gn + L, with the r_j·c_j < 1 condition;
//  * the HBSP^2 decomposition into super^1 + super^2 steps and the paper's
//    point that "the problem size must outweigh the cost of the extra level
//    of communication and synchronization";
//  * closed form vs priced planner schedule vs simulated substrate.

#include <cstdio>

#include "collectives/planners.hpp"
#include "core/analysis.hpp"
#include "core/cost_model.hpp"
#include "core/topology.hpp"
#include "core/workload.hpp"
#include "experiments/figures.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace hbsp;
using analysis::Shares;

void hbsp1_table() {
  const MachineTree tree = make_paper_testbed(10);
  const CostModel model{tree};
  util::Table table{
      "HBSP^1 gather (p=10): closed form vs gn+L bound vs substrate"};
  table.set_header({"n (KB)", "shares", "closed form", "gn+L", "planner cost",
                    "simulated"});
  for (const std::size_t kb : {100u, 500u, 1000u}) {
    const std::size_t n = util::ints_in_kbytes(kb);
    for (const Shares shares : {Shares::kEqual, Shares::kBalanced}) {
      const int root = tree.coordinator_pid(tree.root());
      const auto closed = analysis::hbsp1_gather(tree, tree.root(), root, n, shares);
      const auto schedule =
          coll::plan_gather(tree, n, {.root_pid = root, .shares = shares});
      const double bound =
          tree.g() * static_cast<double>(n) + tree.sync_L(tree.root());
      const double simulated =
          exp::simulate_makespan(tree, schedule, sim::SimParams{});
      table.add_row({std::to_string(kb),
                     shares == Shares::kEqual ? "equal" : "balanced",
                     util::format_time(closed.total()), util::format_time(bound),
                     util::format_time(model.cost(schedule).total()),
                     util::format_time(simulated)});
    }
  }
  table.print();
  std::puts(
      "Balanced shares meet the paper's gn+L bound; equal shares exceed it\n"
      "whenever some r_j/p > 1 (the slow sender's r_j*x_j dominates).");
}

void efficiency_condition_table() {
  const MachineTree tree = make_paper_testbed(10);
  util::Table table{"The r_j*c_j < 1 efficiency condition (SS4.2)"};
  table.set_header({"pid", "r_j", "balanced c_j", "r_j*c_j", "equal 1/p",
                    "r_j/p"});
  for (int pid = 0; pid < tree.num_processors(); ++pid) {
    const MachineId id = tree.processor(pid);
    const double r = tree.r(id);
    const double c = tree.c(id);
    const double p = tree.num_processors();
    table.add_row({std::to_string(pid), util::Table::num(r, 2),
                   util::Table::num(c, 4), util::Table::num(r * c, 4),
                   util::Table::num(1.0 / p, 4), util::Table::num(r / p, 4)});
  }
  table.print();
}

void hbsp2_table() {
  const MachineTree tree = make_figure1_cluster();
  const CostModel model{tree};
  util::Table table{
      "HBSP^2 gather on the Figure 1 machine: superstep decomposition"};
  table.set_header({"n (KB)", "super^1 (clusters)", "super^2 (to root)",
                    "total closed", "planner", "simulated", "flat-BSP view"});
  for (const std::size_t kb : {10u, 100u, 500u, 1000u}) {
    const std::size_t n = util::ints_in_kbytes(kb);
    const auto closed = analysis::hbsp2_gather(tree, n, Shares::kBalanced);
    const auto schedule = coll::plan_gather(tree, n, {});
    const double simulated =
        exp::simulate_makespan(tree, schedule, sim::SimParams{});
    // What a flat (hierarchy-blind) analysis would claim: one superstep with
    // every processor sending straight to the root at level-2 cost.
    const auto flat = analysis::hbsp1_gather(
        tree, tree.root(), tree.coordinator_pid(tree.root()), n,
        Shares::kBalanced);
    table.add_row({std::to_string(kb), util::format_time(closed.steps[0].cost),
                   util::format_time(closed.steps[1].cost),
                   util::format_time(closed.total()),
                   util::format_time(model.cost(schedule).total()),
                   util::format_time(simulated), util::format_time(flat.total())});
  }
  table.print();
  std::puts(
      "The super^2 term (campus network + L_{2,0}) dominates small problems:\n"
      "the problem size must outweigh the extra level's cost (SS4.3).");
}

}  // namespace

int main() {
  hbsp1_table();
  efficiency_condition_table();
  hbsp2_table();
  return 0;
}
