// Reproduces Figure 3(b): gather improvement factor T_u/T_b — equal shares
// versus BYTEmark-balanced shares, with the fastest processor as root (§5.2).
//
// Paper shape to match: virtually no benefit from balancing except at p = 2.
// The balanced c_j come from a noisy simulated BYTEmark run, as on the
// paper's non-dedicated cluster (their c_j for the second-fastest machine
// was mis-estimated, §5.2).

#include <cstdio>

#include "experiments/figures.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace hbsp;
  util::Cli cli{argc, argv};
  cli.allow("csv", "write the sweep to this CSV path")
      .allow("seed", "sweep master seed (default 2001)")
      .allow("noise", "BYTEmark log-normal noise sigma (default 0.05)")
      .allow("threads", "sweep worker threads (default 1)");
  cli.validate();

  exp::FigureConfig config;
  config.noise.seed = static_cast<std::uint64_t>(cli.get_int("seed", 2001));
  config.noise.stddev = cli.get_double("noise", 0.05);
  config.threads = static_cast<int>(cli.get_positive_int("threads", 1));

  exp::SweepRunner runner{config.threads};
  const exp::ImprovementTable table =
      exp::gather_balance_experiment(config, runner);
  table
      .to_table(
          "Figure 3(b) - gather improvement factor T_u/T_b (equal vs balanced "
          "workloads, root = fastest)")
      .print();
  runner.counters().to_table("sweep throughput").print();

  if (cli.has("csv")) {
    exp::write_improvement_csv(table, cli.get("csv", ""));
  }
  std::puts(
      "\nPaper: balancing helps only at p=2; elsewhere the root's aggregate\n"
      "receive dominates either way and mis-estimated c_j erase the gain.");
  return 0;
}
