// Reproduces Figure 3(b): gather improvement factor T_u/T_b — equal shares
// versus BYTEmark-balanced shares, with the fastest processor as root (§5.2).
//
// Paper shape to match: virtually no benefit from balancing except at p = 2.
// The balanced c_j come from a noisy simulated BYTEmark run, as on the
// paper's non-dedicated cluster (their c_j for the second-fastest machine
// was mis-estimated, §5.2).

#include <cstdio>

#include "experiments/figures.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace hbsp;
  util::Cli cli{argc, argv};
  cli.allow("csv", "write the sweep to this CSV path")
      .allow("seed", "BYTEmark noise seed (default 2001)")
      .allow("noise", "BYTEmark log-normal noise sigma (default 0.05)");
  cli.validate();

  exp::FigureConfig config;
  config.noise.seed = static_cast<std::uint64_t>(cli.get_int("seed", 2001));
  config.noise.stddev = cli.get_double("noise", 0.05);

  const exp::ImprovementTable table = exp::gather_balance_experiment(config);
  table
      .to_table(
          "Figure 3(b) - gather improvement factor T_u/T_b (equal vs balanced "
          "workloads, root = fastest)")
      .print();

  if (cli.has("csv")) {
    util::CsvWriter csv{cli.get("csv", "")};
    std::vector<std::string> header{"p"};
    for (const auto kb : table.kbytes) header.push_back(std::to_string(kb));
    csv.write_row(header);
    for (std::size_t i = 0; i < table.processors.size(); ++i) {
      std::vector<std::string> row{std::to_string(table.processors[i])};
      for (const double f : table.factor[i]) {
        row.push_back(util::Table::num(f, 4));
      }
      csv.write_row(row);
    }
  }
  std::puts(
      "\nPaper: balancing helps only at p=2; elsewhere the root's aggregate\n"
      "receive dominates either way and mis-estimated c_j erase the gain.");
  return 0;
}
