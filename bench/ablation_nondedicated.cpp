// Ablation E17: the paper measured on a *non-dedicated* cluster (§5.1) —
// other users' jobs perturb every run. This bench reruns the Figure 3(a)
// gather experiment under the substrate's background-load model and reports
// mean ± stddev of the improvement factor over load seeds, showing the
// headline shapes survive realistic run-to-run noise (and how much of the
// paper's plot wobble the load model alone explains).
//
// The (p, sigma, seed) replicas are independent, so they shard across a
// util::ThreadPool; factors land in per-replica slots and the summaries are
// accumulated in replica order afterwards, keeping the output bit-identical
// at any --threads value.

#include <cstdio>
#include <vector>

#include "experiments/figures.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace hbsp;

struct Replica {
  int p = 0;
  double sigma = 0.0;
  int seed = 0;
};

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli{argc, argv};
  cli.allow("threads", "worker threads for the replica sweep (default 1)");
  cli.validate();
  const int threads = static_cast<int>(cli.get_positive_int("threads", 1));

  const std::vector<int> ps = {2, 4, 6, 8, 10};
  const std::vector<double> sigmas = {0.0, 0.1, 0.3};
  std::vector<Replica> replicas;
  for (const int p : ps) {
    for (const double sigma : sigmas) {
      const int seeds = sigma == 0.0 ? 1 : 12;
      for (int seed = 1; seed <= seeds; ++seed) {
        replicas.push_back({p, sigma, seed});
      }
    }
  }

  std::vector<double> factors(replicas.size(), 0.0);
  util::ThreadPool pool{threads};
  pool.parallel_for(replicas.size(), [&](std::size_t i) {
    const Replica& replica = replicas[i];
    exp::FigureConfig config;
    config.processors = {replica.p};
    config.kbytes = {500};
    config.sim.load_stddev = replica.sigma;
    config.sim.load_seed = static_cast<std::uint64_t>(replica.seed * 31);
    factors[i] = exp::gather_root_experiment(config).factor[0][0];
  });

  util::Table table{
      "Figure 3(a) under background load: T_s/T_f mean +/- stddev over 12 "
      "load seeds (n = 500 KB)"};
  table.set_header({"p", "sigma=0 (dedicated)", "sigma=0.1", "sigma=0.3"});

  std::size_t next = 0;
  for (const int p : ps) {
    std::vector<std::string> row{std::to_string(p)};
    for (const double sigma : sigmas) {
      util::Accumulator acc;
      const int seeds = sigma == 0.0 ? 1 : 12;
      for (int seed = 1; seed <= seeds; ++seed) acc.add(factors[next++]);
      const auto summary = acc.summary();
      std::string cell = util::Table::num(summary.mean, 3);
      if (summary.count > 1) {
        cell += " +/- " + util::Table::num(summary.stddev, 3);
      }
      row.push_back(cell);
    }
    table.add_row(row);
  }
  table.print();

  std::puts(
      "\nThe p=2 anomaly (< 1) and the monotone growth survive background\n"
      "load; at sigma=0.3 the run-to-run spread is comparable to the wobble\n"
      "visible in published non-dedicated-cluster plots.");
  return 0;
}
