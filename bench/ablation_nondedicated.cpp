// Ablation E17: the paper measured on a *non-dedicated* cluster (§5.1) —
// other users' jobs perturb every run. This bench reruns the Figure 3(a)
// gather experiment under the substrate's background-load model and reports
// mean ± stddev of the improvement factor over load seeds, showing the
// headline shapes survive realistic run-to-run noise (and how much of the
// paper's plot wobble the load model alone explains).

#include <cstdio>

#include "experiments/figures.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace hbsp;

}  // namespace

int main() {
  util::Table table{
      "Figure 3(a) under background load: T_s/T_f mean +/- stddev over 12 "
      "load seeds (n = 500 KB)"};
  table.set_header({"p", "sigma=0 (dedicated)", "sigma=0.1", "sigma=0.3"});

  for (const int p : {2, 4, 6, 8, 10}) {
    std::vector<std::string> row{std::to_string(p)};
    for (const double sigma : {0.0, 0.1, 0.3}) {
      util::Accumulator acc;
      const int seeds = sigma == 0.0 ? 1 : 12;
      for (int seed = 1; seed <= seeds; ++seed) {
        exp::FigureConfig config;
        config.processors = {p};
        config.kbytes = {500};
        config.sim.load_stddev = sigma;
        config.sim.load_seed = static_cast<std::uint64_t>(seed * 31);
        const auto result = exp::gather_root_experiment(config);
        acc.add(result.factor[0][0]);
      }
      const auto summary = acc.summary();
      std::string cell = util::Table::num(summary.mean, 3);
      if (summary.count > 1) {
        cell += " +/- " + util::Table::num(summary.stddev, 3);
      }
      row.push_back(cell);
    }
    table.add_row(row);
  }
  table.print();

  std::puts(
      "\nThe p=2 anomaly (< 1) and the monotone growth survive background\n"
      "load; at sigma=0.3 the run-to-run spread is comparable to the wobble\n"
      "visible in published non-dedicated-cluster plots.");
  return 0;
}
