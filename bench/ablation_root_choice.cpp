// Ablation E9: how much does coordinator/root selection matter per
// collective? The paper's design rule says "faster machines should be more
// involved"; this sweep quantifies it by running every rooted collective
// with the fastest, a median, and the slowest processor as root.
//
// The (collective, root) cases are independent simulations, so they shard
// across a util::ThreadPool into per-case slots; rows are assembled in case
// order so the table is identical at any --threads value.

#include <algorithm>
#include <cstdio>
#include <functional>
#include <vector>

#include "collectives/planners.hpp"
#include "core/topology.hpp"
#include "experiments/figures.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace {

using namespace hbsp;
using coll::Shares;
using coll::TopPhase;

int median_pid(const MachineTree& tree) {
  std::vector<int> order(static_cast<std::size_t>(tree.num_processors()));
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return tree.processor_r(a) < tree.processor_r(b);
  });
  return order[order.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli{argc, argv};
  cli.allow("threads", "worker threads for the case sweep (default 1)");
  cli.validate();

  const MachineTree tree = make_paper_testbed(10);
  const std::size_t n = hbsp::util::ints_in_kbytes(500);
  const int fast = tree.coordinator_pid(tree.root());
  const int median = median_pid(tree);
  const int slow = tree.slowest_pid(tree.root());

  struct Collective {
    const char* name;
    std::function<CommSchedule(int)> plan;
  };
  const std::vector<Collective> collectives = {
      {"gather",
       [&](int root) {
         return coll::plan_gather(tree, n,
                                  {.root_pid = root, .shares = Shares::kBalanced});
       }},
      {"scatter",
       [&](int root) {
         return coll::plan_scatter(
             tree, n, {.root_pid = root, .shares = Shares::kBalanced});
       }},
      {"broadcast (two-phase)",
       [&](int root) {
         return coll::plan_broadcast(tree, n,
                                     {.root_pid = root,
                                      .top_phase = TopPhase::kTwoPhase,
                                      .shares = Shares::kEqual});
       }},
      {"broadcast (one-phase)",
       [&](int root) {
         return coll::plan_broadcast(tree, n,
                                     {.root_pid = root,
                                      .top_phase = TopPhase::kOnePhase,
                                      .shares = Shares::kEqual});
       }},
      {"reduce",
       [&](int root) {
         return coll::plan_reduce(tree, n,
                                  {.root_pid = root, .shares = Shares::kBalanced});
       }},
  };
  const std::vector<int> roots = {fast, median, slow};

  std::vector<double> makespans(collectives.size() * roots.size(), 0.0);
  util::ThreadPool pool{static_cast<int>(cli.get_positive_int("threads", 1))};
  pool.parallel_for(makespans.size(), [&](std::size_t i) {
    const auto& collective = collectives[i / roots.size()];
    const int root = roots[i % roots.size()];
    makespans[i] =
        exp::simulate_makespan(tree, collective.plan(root), sim::SimParams{});
  });

  util::Table table{
      "Root selection ablation (p=10, n=500 KB, balanced shares)"};
  table.set_header({"collective", "root=fastest", "root=median", "root=slowest",
                    "slowest/fastest"});
  for (std::size_t c = 0; c < collectives.size(); ++c) {
    const double t_fast = makespans[c * roots.size()];
    const double t_median = makespans[c * roots.size() + 1];
    const double t_slow = makespans[c * roots.size() + 2];
    table.add_row({collectives[c].name, util::format_time(t_fast),
                   util::format_time(t_median), util::format_time(t_slow),
                   util::Table::num(t_slow / t_fast, 3)});
  }
  table.print();

  std::puts(
      "\nGather/scatter/reduce reward a fast root (it does the bulk of the\n"
      "endpoint work); broadcast barely cares (every processor receives all\n"
      "n items either way) - the paper's two design rules, quantified.");
  return 0;
}
