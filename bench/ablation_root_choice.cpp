// Ablation E9: how much does coordinator/root selection matter per
// collective? The paper's design rule says "faster machines should be more
// involved"; this sweep quantifies it by running every rooted collective
// with the fastest, a median, and the slowest processor as root.

#include <algorithm>
#include <cstdio>

#include "collectives/planners.hpp"
#include "core/topology.hpp"
#include "experiments/figures.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace hbsp;
using coll::Shares;
using coll::TopPhase;

int median_pid(const MachineTree& tree) {
  std::vector<int> order(static_cast<std::size_t>(tree.num_processors()));
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return tree.processor_r(a) < tree.processor_r(b);
  });
  return order[order.size() / 2];
}

}  // namespace

int main() {
  const MachineTree tree = make_paper_testbed(10);
  const std::size_t n = hbsp::util::ints_in_kbytes(500);
  const int fast = tree.coordinator_pid(tree.root());
  const int median = median_pid(tree);
  const int slow = tree.slowest_pid(tree.root());

  const auto simulate = [&](const CommSchedule& schedule) {
    return exp::simulate_makespan(tree, schedule, sim::SimParams{});
  };

  util::Table table{
      "Root selection ablation (p=10, n=500 KB, balanced shares)"};
  table.set_header({"collective", "root=fastest", "root=median", "root=slowest",
                    "slowest/fastest"});

  const auto add = [&](const char* name, auto&& plan) {
    const double t_fast = simulate(plan(fast));
    const double t_median = simulate(plan(median));
    const double t_slow = simulate(plan(slow));
    table.add_row({name, util::format_time(t_fast), util::format_time(t_median),
                   util::format_time(t_slow),
                   util::Table::num(t_slow / t_fast, 3)});
  };

  add("gather", [&](int root) {
    return coll::plan_gather(tree, n,
                             {.root_pid = root, .shares = Shares::kBalanced});
  });
  add("scatter", [&](int root) {
    return coll::plan_scatter(tree, n,
                              {.root_pid = root, .shares = Shares::kBalanced});
  });
  add("broadcast (two-phase)", [&](int root) {
    return coll::plan_broadcast(tree, n,
                                {.root_pid = root,
                                 .top_phase = TopPhase::kTwoPhase,
                                 .shares = Shares::kEqual});
  });
  add("broadcast (one-phase)", [&](int root) {
    return coll::plan_broadcast(tree, n,
                                {.root_pid = root,
                                 .top_phase = TopPhase::kOnePhase,
                                 .shares = Shares::kEqual});
  });
  add("reduce", [&](int root) {
    return coll::plan_reduce(tree, n,
                             {.root_pid = root, .shares = Shares::kBalanced});
  });
  table.print();

  std::puts(
      "\nGather/scatter/reduce reward a fast root (it does the bulk of the\n"
      "endpoint work); broadcast barely cares (every processor receives all\n"
      "n items either way) - the paper's two design rules, quantified.");
  return 0;
}
