// Seeded load generator for the embedded scenario-advisory service
// (src/svc): offers a reproducible open- or closed-loop request mix over the
// three standard machines and reports throughput, tail latency, and the
// deterministic outcome tally.
//
// The tally block (submitted/completed/coalesced/shed/checksum) is a pure
// function of (--seed, --qps, --duration, --expired, mode) — identical at any
// --threads and --shards — which is what `--tally PATH` exists for: CI writes
// the block at two shard counts and requires the files byte-identical.
// Latency and throughput are wall-clock measurements: reported, never gated.

#include <cinttypes>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "svc/load_harness.hpp"
#include "util/cli.hpp"

namespace {

std::string tally_block(const hbsp::svc::LoadReport& report) {
  char line[256];
  std::string block;
  std::snprintf(line, sizeof line, "submitted %" PRIu64 "\n", report.submitted);
  block += line;
  std::snprintf(line, sizeof line, "completed %" PRIu64 "\n", report.completed);
  block += line;
  std::snprintf(line, sizeof line, "coalesced %" PRIu64 "\n", report.coalesced);
  block += line;
  std::snprintf(line, sizeof line, "shed_queue_full %" PRIu64 "\n",
                report.shed_queue_full);
  block += line;
  std::snprintf(line, sizeof line, "shed_deadline %" PRIu64 "\n",
                report.shed_deadline);
  block += line;
  std::snprintf(line, sizeof line, "failed %" PRIu64 "\n", report.failed);
  block += line;
  std::snprintf(line, sizeof line, "content_checksum %016" PRIx64 "\n",
                report.content_checksum);
  block += line;
  return block;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hbsp;
  util::Cli cli{argc, argv};
  cli.allow("mode", "arrival model: open or closed (default open)")
      .allow("threads", "service executor threads (default 1)")
      .allow("shards", "admission-queue shards (default 1)")
      .allow("capacity", "admission-queue bound, 0 = unbounded (default 64)")
      .allow("qps", "arrival rate of the virtual schedule (default 200)")
      .allow("duration", "virtual seconds of arrivals (default 1)")
      .allow("clients", "closed-loop outstanding requests (default 8)")
      .allow("seed", "request-mix master seed (default 0x1db15eed)")
      .allow("expired", "fraction of requests with expired deadlines, in [0, 1)")
      .allow("tally", "also write the deterministic tally block to this path");
  cli.validate();

  svc::LoadConfig config;
  const std::string mode = cli.get("mode", "open");
  if (mode == "open") {
    config.mode = svc::LoadMode::kOpenLoop;
  } else if (mode == "closed") {
    config.mode = svc::LoadMode::kClosedLoop;
  } else {
    throw std::invalid_argument{"--mode expects 'open' or 'closed', got '" +
                                mode + "'"};
  }
  config.threads = static_cast<int>(cli.get_positive_int("threads", 1));
  config.shards = static_cast<int>(cli.get_positive_int("shards", 1));
  const std::int64_t capacity = cli.get_int("capacity", 64);
  if (capacity < 0) {
    throw std::invalid_argument{"--capacity expects a non-negative integer"};
  }
  config.queue_capacity = static_cast<std::size_t>(capacity);
  config.qps = cli.get_positive_double("qps", 200.0);
  config.duration = cli.get_positive_double("duration", 1.0);
  config.clients = static_cast<int>(cli.get_positive_int("clients", 8));
  config.seed = static_cast<std::uint64_t>(cli.get_int(
      "seed", static_cast<std::int64_t>(config.seed)));
  config.expired_fraction = cli.get_double("expired", 0.0);
  if (config.expired_fraction < 0.0 || config.expired_fraction >= 1.0) {
    throw std::invalid_argument{"--expired expects a fraction in [0, 1)"};
  }

  const svc::LoadReport report = svc::run_load(config);

  std::printf("load_gen: mode=%s threads=%d shards=%d capacity=%zu\n",
              svc::to_string(config.mode), config.threads, config.shards,
              config.queue_capacity);
  std::printf("          qps=%.1f duration=%.2fs seed=%#" PRIx64
              " expired=%.3f\n",
              config.qps, config.duration, config.seed,
              config.expired_fraction);
  std::printf("-- deterministic tally --\n%s", tally_block(report).c_str());
  std::printf("-- measured --\n");
  std::printf("wall_seconds    %.6f\n", report.wall_seconds);
  std::printf("throughput_rps  %.1f\n", report.throughput_rps);
  std::printf("latency_p50     %.6fs\n", report.latency_p50);
  std::printf("latency_p95     %.6fs\n", report.latency_p95);
  std::printf("latency_p99     %.6fs\n", report.latency_p99);

  if (cli.has("tally")) {
    const std::string path = cli.get("tally", "");
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "load_gen: cannot open %s\n", path.c_str());
      return 1;
    }
    std::fputs(tally_block(report).c_str(), out);
    std::fclose(out);
  }
  return 0;
}
