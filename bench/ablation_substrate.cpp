// Ablation E10: are the Figure 3/4 shapes artefacts of the substrate's
// parameter choices? Sweeps the three mechanism knobs — receive-cost ratio,
// shared-medium wire factor, per-message overheads — and reports the three
// headline shape statistics for each setting:
//
//   A = gather T_s/T_f at p=2   (paper: < 1, the "slow root wins" anomaly)
//   B = gather T_s/T_f at p=10  (paper: clearly > 1 and > A)
//   C = broadcast T_s/T_f at p=10 (paper: ~1, far below B)

#include <cstdio>

#include "experiments/figures.hpp"
#include "util/table.hpp"

namespace {

using namespace hbsp;

struct ShapeStats {
  double gather_p2;
  double gather_p10;
  double bcast_p10;
};

ShapeStats measure(const sim::SimParams& params) {
  exp::FigureConfig config;
  config.processors = {2, 10};
  config.kbytes = {500};
  config.sim = params;
  const auto gather = exp::gather_root_experiment(config);
  const auto bcast = exp::broadcast_root_experiment(config);
  return {gather.factor[0][0], gather.factor[1][0], bcast.factor[1][0]};
}

}  // namespace

int main() {
  util::Table table{
      "Substrate sensitivity: headline shapes across mechanism settings"};
  table.set_header({"variant", "gather p=2 (<1?)", "gather p=10 (>1?)",
                    "bcast p=10 (~1?)", "shapes hold"});

  const auto add = [&](const char* name, const sim::SimParams& params) {
    const ShapeStats s = measure(params);
    const bool holds = s.gather_p2 < 1.0 && s.gather_p10 > 1.3 &&
                       s.bcast_p10 < s.gather_p10 - 0.3 && s.bcast_p10 < 1.4;
    table.add_row({name, util::Table::num(s.gather_p2, 3),
                   util::Table::num(s.gather_p10, 3),
                   util::Table::num(s.bcast_p10, 3), holds ? "yes" : "NO"});
  };

  add("defaults", sim::SimParams{});

  for (const double ratio : {0.4, 0.55, 0.7, 0.85}) {
    sim::SimParams p;
    p.recv_ratio = ratio;
    add(("recv_ratio=" + util::Table::num(ratio, 2)).c_str(), p);
  }
  for (const double wire : {0.0, 0.3, 0.6, 0.9}) {
    sim::SimParams p;
    p.wire_factor_base = wire;
    p.model_wire_contention = wire > 0.0;
    add(("wire_factor=" + util::Table::num(wire, 1)).c_str(), p);
  }
  {
    sim::SimParams p;
    p.o_send = 0.0;
    p.o_recv = 0.0;
    add("no per-message overheads", p);
  }
  {
    sim::SimParams p;
    p.o_send = 200e-6;
    p.o_recv = 300e-6;
    add("10x per-message overheads", p);
  }
  {
    sim::SimParams p;
    p.latency_base = 5e-3;
    add("10x latency", p);
  }

  table.print();
  std::puts(
      "\nThe qualitative claims survive wide parameter ranges; only the\n"
      "receive-cost discount (recv_ratio < 1) is essential for the p=2\n"
      "anomaly, which is exactly the PVM sender-side-packing artefact the\n"
      "paper's SS5.2 discussion appeals to.");
  return 0;
}
