// Ablation E10: are the Figure 3/4 shapes artefacts of the substrate's
// parameter choices? Sweeps the three mechanism knobs — receive-cost ratio,
// shared-medium wire factor, per-message overheads — and reports the three
// headline shape statistics for each setting:
//
//   A = gather T_s/T_f at p=2   (paper: < 1, the "slow root wins" anomaly)
//   B = gather T_s/T_f at p=10  (paper: clearly > 1 and > A)
//   C = broadcast T_s/T_f at p=10 (paper: ~1, far below B)
//
// The parameter variants are independent, so they shard across a
// util::ThreadPool into per-variant slots; the table is assembled in variant
// order and is identical at any --threads value.

#include <cstdio>
#include <string>
#include <vector>

#include "experiments/figures.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace hbsp;

struct ShapeStats {
  double gather_p2;
  double gather_p10;
  double bcast_p10;
};

ShapeStats measure(const sim::SimParams& params) {
  exp::FigureConfig config;
  config.processors = {2, 10};
  config.kbytes = {500};
  config.sim = params;
  const auto gather = exp::gather_root_experiment(config);
  const auto bcast = exp::broadcast_root_experiment(config);
  return {gather.factor[0][0], gather.factor[1][0], bcast.factor[1][0]};
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli{argc, argv};
  cli.allow("threads", "worker threads for the variant sweep (default 1)");
  cli.validate();

  struct Variant {
    std::string name;
    sim::SimParams params;
  };
  std::vector<Variant> variants;
  variants.push_back({"defaults", sim::SimParams{}});
  for (const double ratio : {0.4, 0.55, 0.7, 0.85}) {
    sim::SimParams p;
    p.recv_ratio = ratio;
    variants.push_back({"recv_ratio=" + util::Table::num(ratio, 2), p});
  }
  for (const double wire : {0.0, 0.3, 0.6, 0.9}) {
    sim::SimParams p;
    p.wire_factor_base = wire;
    p.model_wire_contention = wire > 0.0;
    variants.push_back({"wire_factor=" + util::Table::num(wire, 1), p});
  }
  {
    sim::SimParams p;
    p.o_send = 0.0;
    p.o_recv = 0.0;
    variants.push_back({"no per-message overheads", p});
  }
  {
    sim::SimParams p;
    p.o_send = 200e-6;
    p.o_recv = 300e-6;
    variants.push_back({"10x per-message overheads", p});
  }
  {
    sim::SimParams p;
    p.latency_base = 5e-3;
    variants.push_back({"10x latency", p});
  }

  std::vector<ShapeStats> stats(variants.size());
  util::ThreadPool pool{static_cast<int>(cli.get_positive_int("threads", 1))};
  pool.parallel_for(variants.size(),
                    [&](std::size_t i) { stats[i] = measure(variants[i].params); });

  util::Table table{
      "Substrate sensitivity: headline shapes across mechanism settings"};
  table.set_header({"variant", "gather p=2 (<1?)", "gather p=10 (>1?)",
                    "bcast p=10 (~1?)", "shapes hold"});
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const ShapeStats& s = stats[i];
    const bool holds = s.gather_p2 < 1.0 && s.gather_p10 > 1.3 &&
                       s.bcast_p10 < s.gather_p10 - 0.3 && s.bcast_p10 < 1.4;
    table.add_row({variants[i].name, util::Table::num(s.gather_p2, 3),
                   util::Table::num(s.gather_p10, 3),
                   util::Table::num(s.bcast_p10, 3), holds ? "yes" : "NO"});
  }

  table.print();
  std::puts(
      "\nThe qualitative claims survive wide parameter ranges; only the\n"
      "receive-cost discount (recv_ratio < 1) is essential for the p=2\n"
      "anomaly, which is exactly the PVM sender-side-packing artefact the\n"
      "paper's SS5.2 discussion appeals to.");
  return 0;
}
