// E13 (extension): the paper's §6 future work, evaluated.
//
// "We plan to investigate extending the r_{i,j} parameter to accommodate
// communication costs incurred by M_{i,j} as a result of sending data to
// various destinations."
//
// We calibrate per-level destination factors λ from the substrate (as a
// practitioner would with ping-pong probes), then compare the base model's
// and the extended model's predictions against the substrate for schedules
// with increasing shares of cross-hierarchy traffic. The extension should —
// and does — cut the prediction error exactly where the base model is blind.
//
// The four probe schedules are independent, so they shard across a
// util::ThreadPool into per-case slots (each case builds its own simulator
// and cost models); the table assembles in case order.

#include <cmath>
#include <cstdio>
#include <vector>

#include "collectives/planners.hpp"
#include "core/cost_model.hpp"
#include "core/topology.hpp"
#include "sim/cluster_sim.hpp"
#include "sim/dest_calibration.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace {

using namespace hbsp;

double simulated(const MachineTree& tree, const CommSchedule& schedule) {
  sim::ClusterSim sim{tree, sim::SimParams{}};
  return sim.run(schedule).makespan;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli{argc, argv};
  cli.allow("threads", "worker threads for the case sweep (default 1)");
  cli.validate();

  const MachineTree tree = make_figure1_cluster();

  // Calibrate λ per level from the substrate.
  const auto probes = sim::probe_levels(tree, sim::SimParams{});
  util::Table calib{"Calibrated destination factors (ping-pong probes)"};
  calib.set_header({"network level", "probed", "factor lambda"});
  for (const auto& probe : probes) {
    calib.add_row({std::to_string(probe.level), probe.measured ? "yes" : "no",
                   util::Table::num(probe.factor, 2)});
  }
  calib.print();
  const auto costs = sim::calibrate_destination_costs(tree, sim::SimParams{});

  // Schedules with growing cross-campus traffic shares.
  const std::size_t n = util::ints_in_kbytes(400);
  struct Case {
    const char* name;
    CommSchedule schedule;
  };
  std::vector<Case> cases;
  {
    CommSchedule local;
    SuperstepPlan& plan = local.add_step("intra-cluster", 1, tree.child(tree.root(), 0));
    plan.transfers = {{1, 0, n}, {2, 0, n}, {3, 0, n}};
    cases.push_back({"intra-SMP fan-in", std::move(local)});
  }
  {
    CommSchedule mixed = coll::plan_gather(tree, n, {});
    cases.push_back({"hierarchical gather (mixed)", std::move(mixed)});
  }
  {
    CommSchedule cross;
    SuperstepPlan& plan = cross.add_step("cross-campus", 2, tree.root());
    plan.transfers = {{0, 8, n}, {1, 7, n}, {2, 6, n}, {3, 5, n}};
    cases.push_back({"all cross-campus pairs", std::move(cross)});
  }
  {
    CommSchedule bcast = coll::plan_broadcast(tree, n, {});
    cases.push_back({"hierarchical broadcast", std::move(bcast)});
  }

  struct Prediction {
    double actual = 0.0;
    double base = 0.0;
    double extended = 0.0;
  };
  std::vector<Prediction> predictions(cases.size());
  util::ThreadPool pool{static_cast<int>(cli.get_positive_int("threads", 1))};
  pool.parallel_for(cases.size(), [&](std::size_t i) {
    const Case& test_case = cases[i];
    Prediction& out = predictions[i];
    out.actual = simulated(tree, test_case.schedule);
    CostModel model{tree};
    out.base = model.cost(test_case.schedule).total();
    model.set_destination_costs(&costs);
    out.extended = model.cost(test_case.schedule).total();
  });

  util::Table table{
      "Prediction error: base SS3.4 model vs SS6 destination-extended model"};
  table.set_header({"schedule", "substrate", "base model", "base err",
                    "extended model", "ext err"});
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Prediction& prediction = predictions[i];
    const auto err = [&](double value) {
      return util::Table::num(
                 100.0 * std::abs(value - prediction.actual) / prediction.actual,
                 1) +
             "%";
    };
    table.add_row({cases[i].name, util::format_time(prediction.actual),
                   util::format_time(prediction.base), err(prediction.base),
                   util::format_time(prediction.extended),
                   err(prediction.extended)});
  }
  table.print();

  std::puts(
      "\nThe extended model keeps the base model's accuracy on intra-cluster\n"
      "traffic (lambda = 1 there) and substantially tightens predictions for\n"
      "cross-hierarchy traffic, where the single-r model undercharges.");
  return 0;
}
