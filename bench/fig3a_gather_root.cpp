// Reproduces Figure 3(a): gather improvement factor T_s/T_f — execution with
// the slowest workstation as root over execution with the fastest as root —
// across p = 2..10 processors and 100..1000 KB of uniformly distributed
// integers, with equal per-processor shares (c_i = 1/p, §5.1).
//
// Paper shape to match: the factor grows with p, is steady across problem
// sizes, and dips below 1 at p = 2 (the counterintuitive "slow root wins"
// case analysed in §5.2).

#include <cstdio>

#include "experiments/figures.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace hbsp;
  util::Cli cli{argc, argv};
  cli.allow("csv", "write the sweep to this CSV path")
      .allow("seed", "BYTEmark noise seed (default 2001)");
  cli.validate();

  exp::FigureConfig config;
  config.noise.seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 2001));

  const exp::ImprovementTable table = exp::gather_root_experiment(config);
  table
      .to_table(
          "Figure 3(a) - gather improvement factor T_s/T_f (root slowest vs "
          "fastest)")
      .print();

  if (cli.has("csv")) {
    util::CsvWriter csv{cli.get("csv", "")};
    std::vector<std::string> header{"p"};
    for (const auto kb : table.kbytes) header.push_back(std::to_string(kb));
    csv.write_row(header);
    for (std::size_t i = 0; i < table.processors.size(); ++i) {
      std::vector<std::string> row{std::to_string(table.processors[i])};
      for (const double f : table.factor[i]) {
        row.push_back(util::Table::num(f, 4));
      }
      csv.write_row(row);
    }
  }
  std::puts("\nPaper: improvement rises with p, is flat in n, and is < 1 at p=2.");
  return 0;
}
