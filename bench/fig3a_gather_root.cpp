// Reproduces Figure 3(a): gather improvement factor T_s/T_f — execution with
// the slowest workstation as root over execution with the fastest as root —
// across p = 2..10 processors and 100..1000 KB of uniformly distributed
// integers, with equal per-processor shares (c_i = 1/p, §5.1).
//
// Paper shape to match: the factor grows with p, is steady across problem
// sizes, and dips below 1 at p = 2 (the counterintuitive "slow root wins"
// case analysed in §5.2).

#include <cstdio>
#include <stdexcept>

#include "experiments/figures.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace hbsp;
  util::Cli cli{argc, argv};
  cli.allow("csv", "write the sweep to this CSV path")
      .allow("seed", "sweep master seed (default 2001)")
      .allow("threads", "sweep worker threads (default 1)")
      .allow("grid", "paper (default, 9x10 cells) or small (3x3, trace goldens)")
      .allow("trace-out",
             "write the virtual-time span trace to this JSON path");
  cli.validate();

  exp::FigureConfig config;
  config.noise.seed = static_cast<std::uint64_t>(cli.get_int("seed", 2001));
  config.threads = static_cast<int>(cli.get_positive_int("threads", 1));
  const std::string grid = cli.get("grid", "paper");
  if (grid == "small") {
    // The compact grid the CI trace gate pins: full virtual-span coverage at
    // a committed-golden-friendly size.
    config.processors = {2, 6, 10};
    config.kbytes = {100, 500, 1000};
  } else if (grid != "paper") {
    throw std::invalid_argument{"--grid must be 'paper' or 'small'"};
  }

  const bool tracing = cli.has("trace-out");
  auto& recorder = obs::TraceRecorder::global();
  if (tracing) {
    recorder.clear();
    recorder.set_enabled(true);
  }

  exp::SweepRunner runner{config.threads};
  const exp::ImprovementTable table = exp::gather_root_experiment(config, runner);
  table
      .to_table(
          "Figure 3(a) - gather improvement factor T_s/T_f (root slowest vs "
          "fastest)")
      .print();
  runner.counters().to_table("sweep throughput").print();

  if (tracing) {
    recorder.set_enabled(false);
    const obs::TraceSnapshot snapshot = recorder.snapshot();
    obs::write_chrome_trace(snapshot, cli.get("trace-out", ""),
                            obs::TraceFilter::kVirtualOnly);
    obs::self_time_table(snapshot).print();
  }
  if (cli.has("csv")) {
    exp::write_improvement_csv(table, cli.get("csv", ""));
  }
  std::puts("\nPaper: improvement rises with p, is flat in n, and is < 1 at p=2.");
  return 0;
}
