// Reproduces Table 1 (the HBSP^k parameter set) for the reproduction's two
// reference machines, and validates the §3.4 cost model T_i(λ) = w_i + gh +
// L_{i,j} against the discrete-event substrate on canonical supersteps.
//
// The model is an abstraction of the substrate: it prices the h-relation at
// g·h while the substrate adds per-message overheads, latency, the
// receive-side discount and wire contention. The table reports both numbers
// and their ratio so the reader can see how tight the abstraction is.

#include <cstdio>

#include "core/cost_model.hpp"
#include "core/topology.hpp"
#include "experiments/figures.hpp"
#include "sim/cluster_sim.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace hbsp;

void print_parameters(const MachineTree& tree, const char* title) {
  util::Table table{std::string{"Table 1 instance - "} + title};
  table.set_header({"M_{i,j}", "name", "children m_{i,j}", "r_{i,j}",
                    "L_{i,j}", "c_{i,j}", "coordinator pid"});
  for (int level = tree.height(); level >= 0; --level) {
    for (const MachineId id : tree.level_ids(level)) {
      const auto& node = tree.node(id);
      table.add_row({"M_{" + std::to_string(id.level) + "," +
                         std::to_string(id.index) + "}",
                     node.name, util::Table::num(static_cast<long long>(
                                    tree.num_children(id))),
                     util::Table::num(node.r, 2), util::Table::num(node.sync_L, 4),
                     util::Table::num(node.c, 3),
                     util::Table::num(static_cast<long long>(
                         tree.coordinator_pid(id)))});
    }
  }
  table.print();
  std::printf("g (bandwidth indicator of the fastest machine) = %g s/item\n",
              tree.g());
}

void validate_superstep_costs(const MachineTree& tree, const char* title) {
  const CostModel model{tree};
  sim::ClusterSim simulator{tree, sim::SimParams{}};

  util::Table table{std::string{"Superstep cost: model vs substrate - "} + title};
  table.set_header({"superstep", "h", "model T=w+gh+L", "simulated", "sim/model"});

  const auto check = [&](const char* label, SuperstepPlan plan) {
    CommSchedule schedule;
    Phase& phase = schedule.add_phase();
    phase.plans.push_back(std::move(plan));
    const SuperstepCost predicted = model.cost(phase.plans.front());
    simulator.reset();
    const double simulated = simulator.run(schedule).makespan;
    table.add_row({label, util::Table::num(predicted.h, 0),
                   util::format_time(predicted.total()),
                   util::format_time(simulated),
                   util::Table::num(simulated / predicted.total(), 3)});
  };

  const int p = tree.num_processors();
  const int coord = tree.coordinator_pid(tree.root());
  const int slow = tree.slowest_pid(tree.root());

  SuperstepPlan fan_in;
  fan_in.label = "fan-in";
  fan_in.level = tree.height();
  fan_in.sync_scope = tree.root();
  for (int pid = 0; pid < p; ++pid) {
    if (pid != coord) fan_in.transfers.push_back({pid, coord, 10000});
  }
  check("fan-in 10k items/proc -> coordinator", fan_in);

  SuperstepPlan fan_out;
  fan_out.label = "fan-out";
  fan_out.level = tree.height();
  fan_out.sync_scope = tree.root();
  for (int pid = 0; pid < p; ++pid) {
    if (pid != coord) fan_out.transfers.push_back({coord, pid, 10000});
  }
  check("fan-out 10k items/proc from coordinator", fan_out);

  SuperstepPlan pairwise;
  pairwise.label = "shift";
  pairwise.level = tree.height();
  pairwise.sync_scope = tree.root();
  for (int pid = 0; pid < p; ++pid) {
    pairwise.transfers.push_back({pid, (pid + 1) % p, 10000});
  }
  check("cyclic shift, 10k items each", pairwise);

  SuperstepPlan slow_heavy;
  slow_heavy.label = "slow-heavy";
  slow_heavy.level = tree.height();
  slow_heavy.sync_scope = tree.root();
  slow_heavy.transfers.push_back({slow, coord, 50000});
  check("slowest sends 50k to coordinator", slow_heavy);

  SuperstepPlan compute_only;
  compute_only.label = "compute";
  compute_only.level = tree.height();
  compute_only.sync_scope = tree.root();
  for (int pid = 0; pid < p; ++pid) compute_only.compute.push_back({pid, 50000});
  check("50k ops on every processor, no comm", compute_only);

  table.print();
}

}  // namespace

int main() {
  const MachineTree testbed = make_paper_testbed(10);
  print_parameters(testbed, "10-workstation testbed (HBSP^1)");
  validate_superstep_costs(testbed, "testbed");

  const MachineTree campus = make_figure1_cluster();
  print_parameters(campus, "Figure 1 campus machine (HBSP^2)");
  validate_superstep_costs(campus, "campus");

  std::puts(
      "\nThe substrate tracks the model within a small constant factor: the\n"
      "model charges g*h while the substrate adds receive-side processing,\n"
      "per-message overheads, latency and shared-medium contention.");
  return 0;
}
