// The additional HBSP^k collectives the paper defers to Williams'
// dissertation [20]: scatter, all-gather, reduce, scan and all-to-all.
// For each, the table reports the closed-form model cost, the priced planner
// schedule (identical by the agreement contract), the simulated substrate
// time, and the balanced-vs-equal improvement factor — extending the §5
// methodology to the whole collective library.

#include <cstdio>

#include "collectives/planners.hpp"
#include "core/analysis.hpp"
#include "core/cost_model.hpp"
#include "core/topology.hpp"
#include "sim/cluster_sim.hpp"
#include "experiments/figures.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace hbsp;
using analysis::Shares;

struct Row {
  const char* name;
  CommSchedule equal;
  CommSchedule balanced;
  double closed_equal;
  double closed_balanced;
};

void collective_table(const MachineTree& tree, std::size_t n) {
  const CostModel model{tree};
  const int root = tree.coordinator_pid(tree.root());
  const MachineId scope = tree.root();

  std::vector<Row> rows;
  rows.push_back(
      {"gather",
       coll::plan_gather(tree, n, {.root_pid = root, .shares = Shares::kEqual}),
       coll::plan_gather(tree, n, {.root_pid = root, .shares = Shares::kBalanced}),
       analysis::hbsp1_gather(tree, scope, root, n, Shares::kEqual).total(),
       analysis::hbsp1_gather(tree, scope, root, n, Shares::kBalanced).total()});
  rows.push_back(
      {"scatter",
       coll::plan_scatter(tree, n, {.root_pid = root, .shares = Shares::kEqual}),
       coll::plan_scatter(tree, n,
                          {.root_pid = root, .shares = Shares::kBalanced}),
       analysis::hbsp1_scatter(tree, scope, root, n, Shares::kEqual).total(),
       analysis::hbsp1_scatter(tree, scope, root, n, Shares::kBalanced).total()});
  rows.push_back({"allgather", coll::plan_allgather(tree, n, Shares::kEqual),
                  coll::plan_allgather(tree, n, Shares::kBalanced),
                  analysis::hbsp1_allgather(tree, scope, n, Shares::kEqual).total(),
                  analysis::hbsp1_allgather(tree, scope, n, Shares::kBalanced)
                      .total()});
  rows.push_back(
      {"reduce",
       coll::plan_reduce(tree, n, {.root_pid = root, .shares = Shares::kEqual}),
       coll::plan_reduce(tree, n, {.root_pid = root, .shares = Shares::kBalanced}),
       analysis::hbsp1_reduce(tree, scope, root, n, Shares::kEqual).total(),
       analysis::hbsp1_reduce(tree, scope, root, n, Shares::kBalanced).total()});
  rows.push_back({"scan", coll::plan_scan(tree, n, Shares::kEqual),
                  coll::plan_scan(tree, n, Shares::kBalanced),
                  analysis::hbsp1_scan(tree, scope, n, Shares::kEqual).total(),
                  analysis::hbsp1_scan(tree, scope, n, Shares::kBalanced).total()});
  rows.push_back({"alltoall", coll::plan_alltoall(tree, n, Shares::kEqual),
                  coll::plan_alltoall(tree, n, Shares::kBalanced),
                  analysis::hbsp1_alltoall(tree, scope, n, Shares::kEqual).total(),
                  analysis::hbsp1_alltoall(tree, scope, n, Shares::kBalanced)
                      .total()});

  util::Table table{"[20] collective library on the 10-workstation testbed, n = " +
                    std::to_string(n) + " items"};
  table.set_header({"collective", "model equal", "model balanced",
                    "sim equal T_u", "sim balanced T_b", "T_u/T_b",
                    "model T_u/T_b"});
  for (auto& row : rows) {
    const double sim_equal =
        exp::simulate_makespan(tree, row.equal, sim::SimParams{});
    const double sim_balanced =
        exp::simulate_makespan(tree, row.balanced, sim::SimParams{});
    // Cross-check the agreement contract while we are here.
    const double priced_equal = model.cost(row.equal).total();
    if (std::abs(priced_equal - row.closed_equal) > 1e-12 * row.closed_equal) {
      std::fprintf(stderr, "agreement violation for %s!\n", row.name);
      std::exit(1);
    }
    table.add_row({row.name, util::format_time(row.closed_equal),
                   util::format_time(row.closed_balanced),
                   util::format_time(sim_equal), util::format_time(sim_balanced),
                   util::Table::num(sim_equal / sim_balanced, 3),
                   util::Table::num(row.closed_equal / row.closed_balanced, 3)});
  }
  table.print();
}

/// The hierarchical variants on the Figure 1 machine: reduce through the
/// tree and allgather as gather+broadcast, against their naive flat
/// counterparts executed across the campus network.
void hierarchical_table(std::size_t n) {
  const MachineTree tree = make_figure1_cluster();
  const int root = tree.coordinator_pid(tree.root());

  // Naive flat reduce: every processor sends its partial straight to the
  // root across whatever networks separate them.
  CommSchedule flat_reduce;
  {
    SuperstepPlan& up = flat_reduce.add_step("flat partials", 2, tree.root());
    const auto shares = coll::leaf_shares(tree, n, Shares::kBalanced);
    for (int pid = 0; pid < tree.num_processors(); ++pid) {
      const std::size_t share = shares[static_cast<std::size_t>(pid)];
      if (share > 0) up.compute.push_back({pid, static_cast<double>(share) - 1.0});
      if (pid != root) up.transfers.push_back({pid, root, 1});
    }
    SuperstepPlan& fin = flat_reduce.add_step("flat combine", 2, tree.root());
    fin.compute.push_back({root, static_cast<double>(tree.num_processors() - 1)});
  }

  // Naive flat allgather: all-pairs exchange across the campus network.
  CommSchedule flat_allgather;
  {
    SuperstepPlan& plan = flat_allgather.add_step("flat exchange", 2, tree.root());
    const auto shares = coll::leaf_shares(tree, n, Shares::kBalanced);
    for (int a = 0; a < tree.num_processors(); ++a) {
      for (int b = 0; b < tree.num_processors(); ++b) {
        if (a != b && shares[static_cast<std::size_t>(a)] > 0) {
          plan.transfers.push_back({a, b, shares[static_cast<std::size_t>(a)]});
        }
      }
    }
  }

  util::Table table{"Hierarchical variants on the Figure 1 machine, n = " +
                    std::to_string(n) + " items"};
  table.set_header({"collective", "hierarchy-aware", "flat across campus",
                    "campus msgs (hier/flat)"});
  const auto row = [&](const char* name, const CommSchedule& hier,
                       const CommSchedule& flat) {
    sim::ClusterSim sim{tree, sim::SimParams{}};
    const double hier_time = sim.run(hier).makespan;
    const auto hier_msgs = sim.network().stats(tree.root()).messages_crossed;
    sim.reset();
    const double flat_time = sim.run(flat).makespan;
    const auto flat_msgs = sim.network().stats(tree.root()).messages_crossed;
    table.add_row({name, util::format_time(hier_time),
                   util::format_time(flat_time),
                   std::to_string(hier_msgs) + " / " + std::to_string(flat_msgs)});
  };
  row("reduce (tree)", coll::plan_reduce_tree(tree, n, {}), flat_reduce);
  row("allgather (gather+bcast)", coll::plan_allgather_tree(tree, n),
      flat_allgather);
  table.print();
}

}  // namespace

int main() {
  const MachineTree tree = make_paper_testbed(10);
  collective_table(tree, util::ints_in_kbytes(100));
  collective_table(tree, util::ints_in_kbytes(1000));
  hierarchical_table(util::ints_in_kbytes(100));
  std::puts(
      "\nRooted data-moving collectives (gather/scatter/alltoall) benefit from\n"
      "balanced shares; allgather is slow-receiver-bound like broadcast, and\n"
      "reduce/scan move only 1-item partials, so balance matters mainly for\n"
      "their local compute.");
  return 0;
}
