// Reproduces the §4.4 broadcast analysis:
//
//  * HBSP^1 one-phase (gnm + L) vs two-phase (gn(1+r_s) + 2L) costs and the
//    crossover problem size where two-phase starts winning;
//  * the r_s >= m−1 regime where one-phase never loses ("it may be more
//    appropriate not to include that machine in the computation");
//  * HBSP^2 top-level one- vs two-phase with the r_{1,s} ≷ m_{2,0} regimes.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "collectives/planners.hpp"
#include "core/analysis.hpp"
#include "core/topology.hpp"
#include "experiments/figures.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace hbsp;
using analysis::TopPhase;

void hbsp1_phase_comparison() {
  const MachineTree tree = make_paper_testbed(8);
  const int root = tree.coordinator_pid(tree.root());
  util::Table table{
      "HBSP^1 broadcast (p=8, r_s=2.5): one-phase vs two-phase closed forms"};
  table.set_header({"n (items)", "one-phase", "two-phase", "winner"});
  for (const std::size_t n : {10u, 100u, 1000u, 10000u, 100000u, 250000u}) {
    const double one =
        analysis::hbsp1_broadcast_one_phase(tree, tree.root(), root, n).total();
    const double two = analysis::hbsp1_broadcast_two_phase(
                           tree, tree.root(), root, n, analysis::Shares::kEqual)
                           .total();
    table.add_row({std::to_string(n), util::format_time(one),
                   util::format_time(two), two <= one ? "two-phase" : "one-phase"});
  }
  table.print();

  const auto crossover =
      analysis::broadcast_crossover_n(tree, tree.root(), root, 1 << 24);
  if (crossover) {
    std::printf("Two-phase overtakes one-phase at n = %zu items (%s).\n",
                *crossover,
                util::format_bytes(*crossover * 4).c_str());
  }
}

void slow_receiver_regime() {
  util::Table table{
      "When can two-phase win? The r_s vs m-1 regime (SS4.4)"};
  table.set_header({"cluster", "m-1", "r_s", "crossover n (items)"});
  struct Config {
    const char* name;
    std::vector<double> r;
  };
  const std::vector<Config> configs = {
      {"mild heterogeneity, p=8", {1, 1.1, 1.2, 1.3, 1.5, 1.7, 2.0, 2.5}},
      {"one crawler, p=3 (r_s >= m-1)", {1, 2, 4}},
      {"one crawler, p=8", {1, 1.1, 1.2, 1.3, 1.5, 1.7, 2.0, 9.0}},
      {"homogeneous, p=6", {1, 1, 1, 1, 1, 1}},
  };
  for (const auto& config : configs) {
    const MachineTree tree = make_hbsp1_cluster(config.r);
    const int root = tree.coordinator_pid(tree.root());
    const auto crossover =
        analysis::broadcast_crossover_n(tree, tree.root(), root, 1 << 24);
    table.add_row(
        {config.name,
         util::Table::num(static_cast<long long>(config.r.size() - 1)),
         util::Table::num(*std::max_element(config.r.begin(), config.r.end()), 1),
         crossover ? std::to_string(*crossover) : "never (one-phase wins)"});
  }
  table.print();
  std::puts(
      "With r_s >= m-1 the slowest receiver pays r_s*n in either algorithm,\n"
      "so the extra barrier makes two-phase strictly worse at every n.");
}

void hbsp2_top_phase() {
  util::Table table{
      "HBSP^2 broadcast on the Figure 1 machine: top-level strategy"};
  table.set_header({"n (KB)", "one-phase top", "two-phase top", "winner",
                    "simulated one", "simulated two"});
  const MachineTree tree = make_figure1_cluster();
  for (const std::size_t kb : {1u, 10u, 100u, 1000u}) {
    const std::size_t n = util::ints_in_kbytes(kb);
    const double one = analysis::hbsp2_broadcast(tree, n, TopPhase::kOnePhase).total();
    const double two = analysis::hbsp2_broadcast(tree, n, TopPhase::kTwoPhase).total();
    const double sim_one = exp::simulate_makespan(
        tree,
        coll::plan_broadcast(tree, n,
                             {.root_pid = -1,
                              .top_phase = TopPhase::kOnePhase,
                              .shares = analysis::Shares::kEqual}),
        sim::SimParams{});
    const double sim_two = exp::simulate_makespan(
        tree,
        coll::plan_broadcast(tree, n,
                             {.root_pid = -1,
                              .top_phase = TopPhase::kTwoPhase,
                              .shares = analysis::Shares::kEqual}),
        sim::SimParams{});
    table.add_row({std::to_string(kb), util::format_time(one),
                   util::format_time(two), two <= one ? "two-phase" : "one-phase",
                   util::format_time(sim_one), util::format_time(sim_two)});
  }
  table.print();
  const auto crossover = analysis::hbsp2_broadcast_crossover_n(tree, 1 << 24);
  if (crossover) {
    double r1s = 0.0;  // slowest level-1 coordinator (the paper's r_{1,s})
    for (int j = 0; j < tree.num_children(tree.root()); ++j) {
      r1s = std::max(r1s, tree.r(tree.child(tree.root(), j)));
    }
    std::printf(
        "Two-phase top overtakes at n = %zu items; the paper's regime split\n"
        "r_{1,s} (=%.1f) vs m_{2,0} (=%d) picks the dominating term.\n",
        *crossover, r1s, tree.num_children(tree.root()));
  }
}

}  // namespace

int main() {
  hbsp1_phase_comparison();
  slow_receiver_regime();
  hbsp2_top_phase();
  return 0;
}
