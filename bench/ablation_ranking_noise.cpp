// Ablation E11: the paper attributes Figure 3(b)'s missing balanced-gather
// benefit to a mis-estimated c_j ("the second fastest processor... sends too
// many elements to the root node", §5.2). Two sweeps probe that explanation:
//
//  1. unbiased log-normal measurement noise on every BYTEmark score — which
//     turns out NOT to destroy the (already small) benefit: Figure 3(b)'s
//     flatness at large p is structural;
//  2. a targeted overestimate of one slow machine's score (benchmarked idle,
//     loaded at run time) — which does reproduce the paper's anomaly: the
//     over-provisioned sender's r_j·x_j spike makes balancing a net loss.
//
// Both probes shard their independent replicas across a util::ThreadPool;
// every replica derives its seeds from its own configuration, so the tables
// are bit-identical at any --threads value.

#include <cstdio>
#include <vector>

#include "collectives/planners.hpp"
#include "core/topology.hpp"
#include "experiments/figures.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace {

using namespace hbsp;

constexpr int kSeeds = 8;

/// The paper's §5.2 failure mode, reproduced deterministically: one slow
/// machine's BYTEmark score is inflated by `overestimate` (it was idle when
/// benchmarked but loaded at run time), so balancing over-provisions it and
/// its r_j·x_j term spikes. Returns T_u/T_b at the given p.
double targeted_misestimate_factor(int p, double overestimate) {
  const auto speeds = paper_testbed_speeds();

  // Estimated fractions: proportional to score = 1/r, except the slowest
  // machine (inventory slot 1, r=2.5) whose score reads `overestimate`x high.
  std::vector<double> scores;
  for (int pid = 0; pid < p; ++pid) {
    double score = 1.0 / speeds[static_cast<std::size_t>(pid)];
    if (pid == 1) score *= overestimate;
    scores.push_back(score);
  }
  double total = 0.0;
  for (const double s : scores) total += s;

  MachineSpec root;
  root.name = "misranked";
  root.sync_L = 2e-3;
  for (int pid = 0; pid < p; ++pid) {
    MachineSpec leaf;
    leaf.name = "ws" + std::to_string(pid);
    leaf.r = speeds[static_cast<std::size_t>(pid)];
    leaf.c = scores[static_cast<std::size_t>(pid)] / total;
    root.children.push_back(std::move(leaf));
  }
  const MachineTree tree = MachineTree::build(root, 1e-6);

  const std::size_t n = util::ints_in_kbytes(500);
  const int fast = tree.coordinator_pid(tree.root());
  const double t_u = exp::simulate_makespan(
      tree,
      coll::plan_gather(tree, n, {.root_pid = fast, .shares = coll::Shares::kEqual}),
      sim::SimParams{});
  const double t_b = exp::simulate_makespan(
      tree,
      coll::plan_gather(tree, n,
                        {.root_pid = fast, .shares = coll::Shares::kBalanced}),
      sim::SimParams{});
  return t_u / t_b;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli{argc, argv};
  cli.allow("threads", "worker threads for the replica sweeps (default 1)");
  cli.validate();
  util::ThreadPool pool{
      static_cast<int>(cli.get_positive_int("threads", 1))};

  const std::vector<double> noises = {0.0, 0.02, 0.05, 0.1, 0.2, 0.4};
  const std::vector<int> ps = {2, 5, 10};

  // One balanced-gather sweep per (noise, seed) replica; each yields the
  // factor at every p in one pass.
  std::vector<std::vector<double>> replica_factors(noises.size() * kSeeds);
  pool.parallel_for(replica_factors.size(), [&](std::size_t i) {
    exp::FigureConfig config;
    config.processors = ps;
    config.kbytes = {500};
    config.noise.stddev = noises[i / kSeeds];
    config.noise.seed = (i % kSeeds + 1) * 101;
    const auto table = exp::gather_balance_experiment(config);
    std::vector<double> factors;
    for (std::size_t row = 0; row < ps.size(); ++row) {
      factors.push_back(table.factor[row][0]);
    }
    replica_factors[i] = std::move(factors);
  });

  util::Table table{
      "Unbiased BYTEmark measurement noise vs balanced-gather improvement "
      "T_u/T_b (mean over 8 seeds, n=500 KB)"};
  table.set_header({"noise sigma", "p=2", "p=5", "p=10"});
  for (std::size_t noise_idx = 0; noise_idx < noises.size(); ++noise_idx) {
    std::vector<std::string> row{util::Table::num(noises[noise_idx], 2)};
    for (std::size_t p_idx = 0; p_idx < ps.size(); ++p_idx) {
      std::vector<double> factors;
      for (int seed = 0; seed < kSeeds; ++seed) {
        factors.push_back(
            replica_factors[noise_idx * kSeeds +
                            static_cast<std::size_t>(seed)][p_idx]);
      }
      row.push_back(util::Table::num(util::mean(factors), 3));
    }
    table.add_row(row);
  }
  table.print();
  std::puts(
      "Balanced gather is robust to moderate *unbiased* ranking noise: the\n"
      "root's aggregate receive dominates, so Figure 3(b)'s flatness at\n"
      "large p is structural, not a measurement accident.");

  const std::vector<double> overestimates = {1.0, 1.5, 2.0, 3.0, 5.0};
  std::vector<double> targeted_factors(overestimates.size() * ps.size());
  pool.parallel_for(targeted_factors.size(), [&](std::size_t i) {
    targeted_factors[i] = targeted_misestimate_factor(
        ps[i % ps.size()], overestimates[i / ps.size()]);
  });

  util::Table targeted{
      "Targeted mis-estimate (SS5.2): the slowest machine's score reads f x "
      "too high, so balancing over-provisions it"};
  targeted.set_header({"overestimate f", "T_u/T_b p=2", "T_u/T_b p=5",
                       "T_u/T_b p=10"});
  for (std::size_t f_idx = 0; f_idx < overestimates.size(); ++f_idx) {
    std::vector<std::string> row{util::Table::num(overestimates[f_idx], 1)};
    for (std::size_t p_idx = 0; p_idx < ps.size(); ++p_idx) {
      row.push_back(
          util::Table::num(targeted_factors[f_idx * ps.size() + p_idx], 3));
    }
    targeted.add_row(row);
  }
  targeted.print();

  std::puts(
      "\nA machine benchmarked idle but loaded at run time receives far too\n"
      "large a share; its r_j*x_j term dominates the h-relation and the\n"
      "balanced run becomes *slower* than the equal split (factor < 1) -\n"
      "exactly the second-fastest-processor anomaly the paper reports.");
  return 0;
}
